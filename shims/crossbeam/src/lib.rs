//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides only `crossbeam::channel::{unbounded, Sender, Receiver}` —
//! the multi-producer multi-consumer unbounded channel the engine's
//! thread pool and scheduler use. Built on `Mutex<VecDeque>` + `Condvar`;
//! disconnection semantics match crossbeam: `recv` fails once the queue
//! is empty and every `Sender` is gone, `send` fails once every
//! `Receiver` is gone.

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (crossbeam channels are MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the queue still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a value, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so they
                // can observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Block for at most `timeout` waiting for a value. Distinguishes
        /// an empty queue (`Timeout`) from a closed one (`Disconnected`)
        /// so callers can interleave waiting with other work — the
        /// scheduler uses this to execute queued pool tasks while a
        /// nested job is in flight.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn multiple_consumers_drain_everything() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let n = 1000;
        let h = std::thread::spawn(move || {
            let mut got = 0;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut local = 0;
        while rx.recv().is_ok() {
            local += 1;
        }
        assert_eq!(local + h.join().unwrap(), n);
    }
}
