//! Cross-crate integration tests: the paper's end-to-end scenarios
//! exercised through the full stack (engine + catalyst + sql + sources +
//! core).

use catalyst::value::Value;
use catalyst::Row;
use engine::metrics::Metrics;
use engine::PairRdd;
use spark_sql_repro::spark_sql::prelude::*;
use std::sync::Arc;

record! {
    pub struct User {
        pub name: String => DataType::String,
        pub age: i32 => DataType::Int,
    }
}

/// §3.5: create a DataFrame from native objects and join it with a
/// catalog table — the `usersDF.join(views, …)` example.
#[test]
fn native_dataset_joins_catalog_table() {
    let ctx = SQLContext::new_local(2);
    let users = ctx
        .create_dataframe_from(
            vec![
                User {
                    name: "Alice".into(),
                    age: 22,
                },
                User {
                    name: "Bob".into(),
                    age: 19,
                },
            ],
            2,
        )
        .unwrap();

    let views_schema = Arc::new(Schema::new(vec![
        StructField::new("user", DataType::String, false),
        StructField::new("page", DataType::String, false),
    ]));
    let views = ctx
        .create_dataframe(
            views_schema,
            vec![
                Row::new(vec![Value::str("Alice"), Value::str("home")]),
                Row::new(vec![Value::str("Alice"), Value::str("settings")]),
                Row::new(vec![Value::str("Eve"), Value::str("home")]),
            ],
        )
        .unwrap();

    let joined = users.join_on(&views, col("name").eq(col("user"))).unwrap();
    assert_eq!(joined.count().unwrap(), 2);
}

/// §3: seamless relational ⇄ procedural mixing in one program.
#[test]
fn relational_and_procedural_mix() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![StructField::new(
        "n",
        DataType::Long,
        false,
    )]));
    let rows: Vec<Row> = (0..1000).map(|i| Row::new(vec![Value::Long(i)])).collect();
    let df = ctx.create_dataframe(schema, rows).unwrap();

    // Relational filter, procedural map, relational re-entry, SQL finish.
    let evens = df.where_(col("n").rem(lit(2i64)).eq(lit(0i64))).unwrap();
    let squared = evens
        .to_rdd()
        .unwrap()
        .map(|r: Row| Row::new(vec![Value::Long(r.get_long(0) * r.get_long(0))]));
    let schema2 = Arc::new(Schema::new(vec![StructField::new(
        "sq",
        DataType::Long,
        false,
    )]));
    let df2 = ctx.dataframe_from_rdd("squares", schema2, squared).unwrap();
    df2.register_temp_table("squares");
    let out = ctx
        .sql("SELECT max(sq) FROM squares")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out[0].get(0), &Value::Long(998 * 998));
}

/// The engine's fault tolerance holds under SQL execution: inject task
/// failures and the query still completes with the right answer.
#[test]
fn sql_query_survives_injected_task_failures() {
    let ctx = SQLContext::new_local(4);
    let schema = Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("v", DataType::Double, false),
    ]));
    let rows: Vec<Row> = (0..10_000)
        .map(|i| Row::new(vec![Value::Long(i % 50), Value::Double(i as f64)]))
        .collect();
    ctx.register_rows("t", schema, rows).unwrap();

    let expected = ctx
        .sql("SELECT k, sum(v) FROM t GROUP BY k ORDER BY k")
        .unwrap()
        .collect()
        .unwrap();

    // Fail the first attempt of every task from now on.
    let sc = ctx.spark_context().clone();
    sc.set_failure_injector(Some(Arc::new(|site| site.attempt == 0)));
    let with_failures = ctx
        .sql("SELECT k, sum(v) FROM t GROUP BY k ORDER BY k")
        .unwrap()
        .collect()
        .unwrap();
    sc.set_failure_injector(None);

    assert_eq!(expected, with_failures);
    assert!(Metrics::get(&sc.metrics().task_failures) > 0);
}

/// Figures 5–6 + the §5.1 query through the full stack.
#[test]
fn json_tweets_end_to_end() {
    let ctx = SQLContext::new_local(2);
    let tweets = [
        r##"{"text": "This is a tweet about #Spark", "tags": ["#Spark"], "loc": {"lat": 45.1, "long": 90}}"##,
        r#"{"text": "This is another tweet", "tags": [], "loc": {"lat": 39, "long": 88.5}}"#,
        r##"{"text": "A #tweet without #location", "tags": ["#tweet", "#location"]}"##,
    ];
    let df = ctx.read_json_lines("tweets", tweets).unwrap();
    assert_eq!(
        df.schema().to_string(),
        "text STRING NOT NULL,\ntags ARRAY<STRING> NOT NULL,\nloc STRUCT<lat FLOAT NOT NULL, long FLOAT NOT NULL>"
    );
    df.register_temp_table("tweets");
    let rows = ctx
        .sql(
            "SELECT loc.lat, loc.long FROM tweets \
             WHERE text LIKE '%Spark%' AND tags IS NOT NULL",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(0), &Value::Float(45.1));
}

/// §5.3 federation: pushdown measurably reduces wire traffic through the
/// full SQL path.
#[test]
fn federation_pushdown_reduces_wire_bytes() {
    use datasources::{register_database, RemoteDb};
    let db = RemoteDb::new();
    let schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("blob", DataType::String, false),
    ]));
    let rows: Vec<Row> = (0..2000)
        .map(|i| Row::new(vec![Value::Long(i), Value::str("y".repeat(100))]))
        .collect();
    db.create_table("wide", schema, rows);
    register_database("jdbc:sim://itest", db.clone());

    let ctx = SQLContext::new_local(2);
    ctx.sql(
        "CREATE TEMPORARY TABLE wide USING jdbc \
             OPTIONS(url 'jdbc:sim://itest', table 'wide')",
    )
    .unwrap();
    let n = ctx
        .sql("SELECT id FROM wide WHERE id < 100")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 100);
    let pushed_bytes = db.bytes_transferred();
    assert_eq!(db.rows_transferred(), 100, "filter ran remotely");

    db.reset_meters();
    ctx.set_conf(|c| {
        c.pushdown_enabled = false;
        c.column_pruning_enabled = false;
    });
    let n2 = ctx
        .sql("SELECT id FROM wide WHERE id < 100")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n2, 100);
    assert_eq!(db.rows_transferred(), 2000, "everything crossed the wire");
    assert!(db.bytes_transferred() > pushed_bytes * 10);
}

/// The interval-join extension (§7.2) gives identical answers to the
/// nested-loop plan through the whole stack.
#[test]
fn interval_join_extension_matches_nested_loop() {
    use spark_sql_repro::extensions::interval_join::IntervalJoinStrategy;
    let make = |with_ext: bool| {
        let ctx = SQLContext::new_local(2);
        let a = Arc::new(Schema::new(vec![
            StructField::new("start", DataType::Long, false),
            StructField::new("end", DataType::Long, false),
        ]));
        let b = Arc::new(Schema::new(vec![
            StructField::new("bstart", DataType::Long, false),
            StructField::new("bend", DataType::Long, false),
        ]));
        let mk = |seed: i64| -> Vec<Row> {
            (0..300)
                .map(|i| {
                    let lo = (i * 37 + seed * 11) % 1000;
                    Row::new(vec![Value::Long(lo), Value::Long(lo + 20 + (i % 13))])
                })
                .collect()
        };
        ctx.register_rows("a", a, mk(1)).unwrap();
        ctx.register_rows("b", b, mk(2)).unwrap();
        if with_ext {
            ctx.add_strategy(Arc::new(IntervalJoinStrategy));
        }
        ctx
    };
    let q = "SELECT * FROM a JOIN b \
             WHERE start < \"end\" AND bstart < bend \
               AND start < bstart AND bstart < \"end\"";
    let mut plain = make(false).sql(q).unwrap().collect().unwrap();
    let mut fast = make(true).sql(q).unwrap().collect().unwrap();
    plain.sort();
    fast.sort();
    assert!(!plain.is_empty());
    assert_eq!(plain, fast);
}

/// Caching: columnar cache answers match uncached answers and the cached
/// relation reports a real size (enabling broadcast decisions).
#[test]
fn cached_dataframe_matches_uncached() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![
        StructField::new("g", DataType::String, false),
        StructField::new("x", DataType::Long, false),
    ]));
    let rows: Vec<Row> = (0..5000)
        .map(|i| {
            Row::new(vec![
                Value::str(["a", "b", "c"][i % 3]),
                Value::Long(i as i64),
            ])
        })
        .collect();
    let df = ctx.create_dataframe(schema, rows).unwrap();
    df.register_temp_table("t");

    let q = "SELECT g, sum(x), count(*) FROM t GROUP BY g ORDER BY g";
    let uncached = ctx.sql(q).unwrap().collect().unwrap();
    ctx.sql("CACHE TABLE t").unwrap();
    let cached = ctx.sql(q).unwrap().collect().unwrap();
    assert_eq!(uncached, cached);
}

/// Procedural word count over a SQL filter — the Figure 10 pipeline at
/// test scale, both variants agreeing.
#[test]
fn figure10_variants_agree() {
    let ctx = SQLContext::new_local(2);
    let schema = Arc::new(Schema::new(vec![StructField::new(
        "text",
        DataType::String,
        false,
    )]));
    let rows: Vec<Row> = (0..500)
        .map(|i| {
            let text = if i % 10 == 0 {
                "noise only here"
            } else {
                "keep data word data"
            };
            Row::new(vec![Value::str(text)])
        })
        .collect();
    ctx.create_dataframe(schema, rows)
        .unwrap()
        .register_temp_table("messages");

    let filtered = ctx
        .sql("SELECT text FROM messages WHERE text LIKE '%data%'")
        .unwrap()
        .to_rdd()
        .unwrap()
        .map(|r: Row| r.get_str(0).to_string());

    let direct: u64 = filtered
        .flat_map(|l: String| l.split_whitespace().map(str::to_string).collect::<Vec<_>>())
        .map(|w| (w, 1u64))
        .reduce_by_key(|a, b| a + b, 4)
        .count();

    let fs = engine::hdfs::FileStore::temp("itest").unwrap();
    let sc = ctx.spark_context().clone();
    fs.save_text(&sc, &filtered, "f").unwrap();
    let via_disk: u64 = fs
        .read_text(&sc, "f")
        .unwrap()
        .flat_map(|l: String| l.split_whitespace().map(str::to_string).collect::<Vec<_>>())
        .map(|w| (w, 1u64))
        .reduce_by_key(|a, b| a + b, 4)
        .count();

    assert_eq!(direct, via_disk);
    assert_eq!(direct, 3); // keep, data, word
}
