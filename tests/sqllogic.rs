//! Sqllogictest-style golden-query corpus (`tests/sqllogic/*.slt`).
//!
//! Every `.slt` file is a sequence of records over a fixed set of seed
//! tables. Each `query` record carries its expected output inline; the
//! runner executes the whole corpus under the full configuration matrix
//! (vectorize × adaptive × cbo × bounded-memory = 16 configs) and
//! requires byte-identical results in every cell of the matrix. The
//! recorded goldens double as a cross-config differential oracle: an
//! optimization that changes any answer fails with the file, query, SQL,
//! and config that diverged.
//!
//! File format (simplified sqllogictest):
//!
//! ```text
//! # comment
//! statement ok
//! SET spark.sql.shuffle.partitions=4
//!
//! query rowsort
//! SELECT a, b FROM t WHERE a > 1
//! ----
//! 2|x
//! 3|y
//! ```
//!
//! Directives: `statement ok` (execute, expect success, discard rows),
//! `query rowsort` (sort result lines before comparing), and
//! `query ordered` (compare in engine order; use only with a total
//! ORDER BY). NULL renders as `NULL`, the empty string as `(empty)`,
//! and cells join with `|`.
//!
//! Re-record goldens after an intended behavior change with
//! `SQLLOGIC_RECORD=1 cargo test --test sqllogic` (records under the
//! default configuration, then verifies the rest of the matrix).

use catalyst::row::Row;
use catalyst::schema::Schema;
use catalyst::types::{DataType, StructField};
use catalyst::value::Value;
use spark_sql_repro::spark_sql::SQLContext;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---- configuration matrix ----

#[derive(Clone, Copy)]
struct Config {
    vectorize: bool,
    adaptive: bool,
    cbo: bool,
    bounded: bool,
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vectorize={} adaptive={} cbo={} bounded={}",
            self.vectorize, self.adaptive, self.cbo, self.bounded
        )
    }
}

fn matrix() -> Vec<Config> {
    let mut out = Vec::new();
    for &vectorize in &[true, false] {
        for &adaptive in &[true, false] {
            for &cbo in &[true, false] {
                for &bounded in &[true, false] {
                    out.push(Config {
                        vectorize,
                        adaptive,
                        cbo,
                        bounded,
                    });
                }
            }
        }
    }
    out
}

fn context_for(config: Config) -> SQLContext {
    let ctx = SQLContext::new_local(2);
    ctx.set_conf(|c| {
        c.vectorize_enabled = config.vectorize;
        c.adaptive_enabled = config.adaptive;
        c.cbo_enabled = config.cbo;
        if config.bounded {
            // Small enough that hash joins and aggregates over the seed
            // tables actually exercise the spill machinery.
            c.memory_budget_bytes = 64 * 1024;
        }
        // Deterministic small plans regardless of the machine.
        c.shuffle_partitions = 4;
    });
    register_seed_tables(&ctx);
    ctx
}

// ---- seed tables ----

/// Fixed relations every corpus file runs against. Key properties the
/// queries rely on: `emp.dept_id` and `sales.emp_id` contain NULLs (join
/// keys that must never match), `dept.id` is unique, and all numeric
/// columns are integers so aggregates are exact under any evaluation
/// order.
fn register_seed_tables(ctx: &SQLContext) {
    let emp = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Int, false),
        StructField::new("name", DataType::String, false),
        StructField::new("dept_id", DataType::Int, true),
        StructField::new("salary", DataType::Long, false),
        StructField::new("age", DataType::Int, false),
    ]));
    let emp_rows = vec![
        emp_row(1, "alice", Some(10), 5200, 34),
        emp_row(2, "bob", Some(20), 4100, 28),
        emp_row(3, "carol", Some(10), 6900, 45),
        emp_row(4, "dave", Some(30), 3300, 23),
        emp_row(5, "erin", None, 4700, 31),
        emp_row(6, "frank", Some(20), 5200, 39),
        emp_row(7, "grace", Some(10), 8100, 52),
        emp_row(8, "heidi", Some(40), 2900, 21),
        emp_row(9, "ivan", None, 3600, 27),
        emp_row(10, "judy", Some(20), 7400, 48),
        emp_row(11, "mallory", Some(30), 5200, 33),
        emp_row(12, "oscar", Some(10), 4400, 26),
    ];
    ctx.register_rows("emp", emp, emp_rows).unwrap();

    let dept = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Int, false),
        StructField::new("name", DataType::String, false),
        StructField::new("loc_id", DataType::Int, true),
    ]));
    let dept_rows = vec![
        dept_row(10, "eng", Some(100)),
        dept_row(20, "sales", Some(200)),
        dept_row(30, "hr", Some(100)),
        dept_row(40, "ops", None),
        dept_row(50, "legal", Some(300)),
    ];
    ctx.register_rows("dept", dept, dept_rows).unwrap();

    let loc = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Int, false),
        StructField::new("city", DataType::String, false),
    ]));
    let loc_rows = vec![
        loc_row(100, "zurich"),
        loc_row(200, "berlin"),
        loc_row(300, "lisbon"),
    ];
    ctx.register_rows("loc", loc, loc_rows).unwrap();

    let sales = Arc::new(Schema::new(vec![
        StructField::new("sale_id", DataType::Int, false),
        StructField::new("emp_id", DataType::Int, true),
        StructField::new("amount", DataType::Long, false),
        StructField::new("qty", DataType::Int, false),
    ]));
    let sales_rows = vec![
        sale_row(1, Some(1), 300, 3),
        sale_row(2, Some(1), 150, 1),
        sale_row(3, Some(2), 700, 7),
        sale_row(4, Some(3), 90, 1),
        sale_row(5, Some(3), 420, 4),
        sale_row(6, Some(3), 180, 2),
        sale_row(7, None, 999, 9),
        sale_row(8, Some(6), 260, 2),
        sale_row(9, Some(7), 310, 3),
        sale_row(10, Some(7), 80, 1),
        sale_row(11, Some(10), 550, 5),
        sale_row(12, Some(10), 20, 1),
        sale_row(13, None, 640, 6),
        sale_row(14, Some(12), 130, 1),
        sale_row(15, Some(99), 75, 1),
    ];
    ctx.register_rows("sales", sales, sales_rows).unwrap();
}

fn emp_row(id: i32, name: &str, dept_id: Option<i32>, salary: i64, age: i32) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::str(name),
        dept_id.map_or(Value::Null, Value::Int),
        Value::Long(salary),
        Value::Int(age),
    ])
}

fn dept_row(id: i32, name: &str, loc_id: Option<i32>) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::str(name),
        loc_id.map_or(Value::Null, Value::Int),
    ])
}

fn loc_row(id: i32, city: &str) -> Row {
    Row::new(vec![Value::Int(id), Value::str(city)])
}

fn sale_row(sale_id: i32, emp_id: Option<i32>, amount: i64, qty: i32) -> Row {
    Row::new(vec![
        Value::Int(sale_id),
        emp_id.map_or(Value::Null, Value::Int),
        Value::Long(amount),
        Value::Int(qty),
    ])
}

// ---- .slt parsing ----

enum Directive {
    StatementOk,
    QueryRowsort,
    QueryOrdered,
}

struct Record {
    /// Comment/blank lines preceding the directive, re-emitted verbatim
    /// when re-recording.
    preamble: Vec<String>,
    directive: Directive,
    sql: String,
    expected: Vec<String>,
    /// 1-based line number of the directive, for error messages.
    line: usize,
}

fn parse_slt(path: &Path) -> Vec<Record> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut records = Vec::new();
    let mut preamble: Vec<String> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            preamble.push(trimmed.to_string());
            continue;
        }
        let directive = match trimmed {
            "statement ok" => Directive::StatementOk,
            "query rowsort" => Directive::QueryRowsort,
            "query ordered" => Directive::QueryOrdered,
            other => panic!(
                "{}:{}: unknown directive '{other}'",
                path.display(),
                idx + 1
            ),
        };
        let mut sql_lines = Vec::new();
        let mut expected = Vec::new();
        let mut in_expected = false;
        while let Some(&(_, peeked)) = lines.peek() {
            let l = peeked.trim_end();
            if l.is_empty() {
                break;
            }
            lines.next();
            if l == "----" {
                in_expected = true;
            } else if in_expected {
                expected.push(l.to_string());
            } else {
                sql_lines.push(l.to_string());
            }
        }
        assert!(
            !sql_lines.is_empty(),
            "{}:{}: directive with no SQL",
            path.display(),
            idx + 1
        );
        records.push(Record {
            preamble: std::mem::take(&mut preamble),
            directive,
            sql: sql_lines.join("\n"),
            expected,
            line: idx + 1,
        });
    }
    records
}

fn render_slt(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        for p in &r.preamble {
            out.push_str(p);
            out.push('\n');
        }
        out.push_str(match r.directive {
            Directive::StatementOk => "statement ok",
            Directive::QueryRowsort => "query rowsort",
            Directive::QueryOrdered => "query ordered",
        });
        out.push('\n');
        out.push_str(&r.sql);
        out.push('\n');
        if !matches!(r.directive, Directive::StatementOk) {
            out.push_str("----\n");
            for e in &r.expected {
                out.push_str(e);
                out.push('\n');
            }
        }
        out.push('\n');
    }
    out
}

// ---- execution ----

/// Canonical text for one result cell. Distinguishes NULL from the empty
/// string so goldens stay unambiguous.
fn cell(v: &Value) -> String {
    match v {
        Value::Str(s) if s.is_empty() => "(empty)".to_string(),
        other => other.to_string(),
    }
}

fn run_record(ctx: &SQLContext, r: &Record) -> Result<Vec<String>, String> {
    let df = ctx.sql(&r.sql).map_err(|e| format!("plan error: {e}"))?;
    let rows = df.collect().map_err(|e| format!("execution error: {e}"))?;
    let mut lines: Vec<String> = rows
        .iter()
        .map(|row| row.values().iter().map(cell).collect::<Vec<_>>().join("|"))
        .collect();
    if matches!(r.directive, Directive::QueryRowsort) {
        lines.sort();
    }
    Ok(lines)
}

fn run_file(name: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/sqllogic")
        .join(name);
    let mut records = parse_slt(&path);

    if std::env::var("SQLLOGIC_RECORD").is_ok() {
        // Record under the default configuration, then verify the matrix
        // below — a nondeterministic query fails immediately.
        let ctx = context_for(Config {
            vectorize: true,
            adaptive: true,
            cbo: true,
            bounded: false,
        });
        for r in &mut records {
            let got = run_record(&ctx, r)
                .unwrap_or_else(|e| panic!("{}:{}: {e}\nSQL: {}", path.display(), r.line, r.sql));
            if !matches!(r.directive, Directive::StatementOk) {
                r.expected = got;
            }
        }
        std::fs::write(&path, render_slt(&records)).unwrap();
    }

    let mut queries = 0usize;
    for config in matrix() {
        let ctx = context_for(config);
        for r in &records {
            let got = run_record(&ctx, r).unwrap_or_else(|e| {
                panic!(
                    "{}:{}: {e}\nSQL: {}\nconfig: {config}",
                    path.display(),
                    r.line,
                    r.sql
                )
            });
            if matches!(r.directive, Directive::StatementOk) {
                continue;
            }
            queries += 1;
            if got != r.expected {
                panic!(
                    "{}:{}: result mismatch\nSQL: {}\nconfig: {config}\n\
                     expected:\n{}\ngot:\n{}",
                    path.display(),
                    r.line,
                    r.sql,
                    r.expected.join("\n"),
                    got.join("\n"),
                );
            }
        }
    }
    assert!(queries > 0, "{}: no query records", path.display());
}

#[test]
fn sqllogic_joins() {
    run_file("joins.slt");
}

#[test]
fn sqllogic_aggregates() {
    run_file("aggregates.slt");
}

#[test]
fn sqllogic_windows() {
    run_file("windows.slt");
}

#[test]
fn sqllogic_setops() {
    run_file("setops.slt");
}

#[test]
fn sqllogic_scalar() {
    run_file("scalar.slt");
}

#[test]
fn sqllogic_stats() {
    run_file("stats.slt");
}
