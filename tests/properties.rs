//! Deterministic randomized tests on core invariants:
//!
//! * the SQL engine agrees with a naive in-memory reference evaluator;
//! * compiled ("code-generated") and interpreted expression evaluation
//!   agree on random expressions and rows;
//! * every ablation configuration (codegen off, shuffled joins forced,
//!   pushdown off) produces identical answers;
//! * the columnar file format round-trips arbitrary values.
//!
//! Formerly proptest; rewritten as seeded sweeps because the build
//! environment vendors only a minimal rand shim.

use catalyst::codegen;
use catalyst::expr::Expr;
use catalyst::interpreter;
use catalyst::value::Value;
use catalyst::Row;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql_repro::spark_sql::prelude::*;
use std::sync::Arc;

fn table_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        StructField::new("k", DataType::Long, false),
        StructField::new("v", DataType::Long, true),
        StructField::new("s", DataType::String, false),
    ]))
}

type RawRow = (i64, Option<i64>, String);

fn arb_row(rng: &mut StdRng) -> RawRow {
    let k = rng.random_range(0i64..20);
    let v = if rng.random_bool(0.2) {
        None
    } else {
        Some(rng.random_range(-100i64..100))
    };
    let s: String = (0..rng.random_range(1usize..4))
        .map(|_| char::from(rng.random_range(b'a'..b'e')))
        .collect();
    (k, v, s)
}

fn arb_table(rng: &mut StdRng, min: usize, max: usize) -> Vec<RawRow> {
    let len = rng.random_range(min..max);
    (0..len).map(|_| arb_row(rng)).collect()
}

fn to_rows(data: &[RawRow]) -> Vec<Row> {
    data.iter()
        .map(|(k, v, s)| {
            Row::new(vec![
                Value::Long(*k),
                v.map(Value::Long).unwrap_or(Value::Null),
                Value::str(s),
            ])
        })
        .collect()
}

fn ctx_with(data: &[RawRow], conf: spark_sql::SqlConf) -> SQLContext {
    let ctx = SQLContext::new_local(2);
    ctx.set_conf(|c| *c = conf);
    ctx.register_rows("t", table_schema(), to_rows(data))
        .unwrap();
    ctx
}

/// WHERE v > threshold agrees with the reference filter.
#[test]
fn filter_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x5EED_4001);
    for _ in 0..32 {
        let data = arb_table(&mut rng, 0, 80);
        let threshold = rng.random_range(-50i64..50);
        let ctx = ctx_with(&data, spark_sql::SqlConf::default());
        let got = ctx
            .sql(&format!("SELECT count(*) FROM t WHERE v > {threshold}"))
            .unwrap()
            .collect()
            .unwrap();
        let want = data
            .iter()
            .filter(|(_, v, _)| v.is_some_and(|v| v > threshold))
            .count();
        assert_eq!(got[0].get(0), &Value::Long(want as i64));
    }
}

/// GROUP BY sums agree with the reference (nulls skipped).
#[test]
fn group_by_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x5EED_4002);
    for _ in 0..32 {
        let data = arb_table(&mut rng, 0, 80);
        let ctx = ctx_with(&data, spark_sql::SqlConf::default());
        let got = ctx
            .sql("SELECT k, sum(v), count(*) FROM t GROUP BY k ORDER BY k")
            .unwrap()
            .collect()
            .unwrap();
        use std::collections::BTreeMap;
        let mut reference: BTreeMap<i64, (Option<i64>, i64)> = BTreeMap::new();
        for (k, v, _) in &data {
            let e = reference.entry(*k).or_insert((None, 0));
            if let Some(v) = v {
                e.0 = Some(e.0.unwrap_or(0) + v);
            }
            e.1 += 1;
        }
        assert_eq!(got.len(), reference.len());
        for (row, (k, (sum, count))) in got.iter().zip(reference) {
            assert_eq!(row.get(0), &Value::Long(k));
            let want_sum = sum.map(Value::Long).unwrap_or(Value::Null);
            assert_eq!(row.get(1), &want_sum);
            assert_eq!(row.get(2), &Value::Long(count));
        }
    }
}

/// ORDER BY produces exactly the reference ordering (stable on ties
/// by whole-row comparison).
#[test]
fn order_by_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x5EED_4003);
    for _ in 0..32 {
        let data = arb_table(&mut rng, 0, 60);
        let ctx = ctx_with(&data, spark_sql::SqlConf::default());
        let got: Vec<i64> = ctx
            .sql("SELECT k FROM t ORDER BY k DESC")
            .unwrap()
            .collect()
            .unwrap()
            .iter()
            .map(|r| r.get_long(0))
            .collect();
        let mut want: Vec<i64> = data.iter().map(|(k, _, _)| *k).collect();
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(got, want);
    }
}

/// All ablation configurations give identical answers for a query
/// exercising filter + join + aggregate.
#[test]
fn ablations_preserve_semantics() {
    let mut rng = StdRng::seed_from_u64(0x5EED_4004);
    for _ in 0..8 {
        let data = arb_table(&mut rng, 1, 60);
        let q = "SELECT t.k, count(*), sum(u.v) FROM t JOIN t2 u ON t.k = u.k \
                 WHERE t.s LIKE 'a%' OR t.v IS NOT NULL \
                 GROUP BY t.k ORDER BY t.k";
        let run = |conf: spark_sql::SqlConf| {
            let ctx = ctx_with(&data, conf);
            ctx.register_rows("t2", table_schema(), to_rows(&data))
                .unwrap();
            ctx.sql(q).unwrap().collect().unwrap()
        };
        let baseline = run(spark_sql::SqlConf::default());
        let no_codegen = run(spark_sql::SqlConf {
            codegen_enabled: false,
            ..Default::default()
        });
        let shuffled = run(spark_sql::SqlConf {
            broadcast_threshold: 0,
            ..Default::default()
        });
        let shark = run(spark_sql::SqlConf::shark_like());
        assert_eq!(&baseline, &no_codegen);
        assert_eq!(&baseline, &shuffled);
        assert_eq!(&baseline, &shark);
    }
}

/// Compiled and interpreted evaluation agree on random arithmetic /
/// comparison expressions over random rows (NULLs included).
#[test]
fn codegen_agrees_with_interpreter() {
    let mut rng = StdRng::seed_from_u64(0x5EED_4005);
    let x = Expr::BoundRef {
        index: 0,
        dtype: DataType::Long,
        nullable: true,
        name: "x".into(),
    };
    let y = Expr::BoundRef {
        index: 1,
        dtype: DataType::Long,
        nullable: true,
        name: "y".into(),
    };
    for _ in 0..256 {
        let a = if rng.random_bool(0.2) {
            None
        } else {
            Some(rng.random_range(-1000i64..1000))
        };
        let b = if rng.random_bool(0.2) {
            None
        } else {
            Some(rng.random_range(-1000i64..1000))
        };
        let c = rng.random_range(-10i64..10);
        let op = rng.random_range(0usize..8);
        let exprs = [
            x.clone().add(y.clone()).mul(lit(c)),
            x.clone().sub(y.clone()),
            x.clone().rem(lit(c)),
            x.clone().div(y.clone()),
            x.clone().lt(y.clone()),
            x.clone().eq(y.clone()).and(x.clone().gt(lit(c))),
            x.clone().is_null().or(y.clone().is_not_null()),
            x.clone().add(lit(c)).gt_eq(y.clone()),
        ];
        let e = &exprs[op];
        let row = Row::new(vec![
            a.map(Value::Long).unwrap_or(Value::Null),
            b.map(Value::Long).unwrap_or(Value::Null),
        ]);
        let interpreted = interpreter::eval(e, &row).unwrap();
        let dtype = e.data_type().unwrap();
        let compiled = codegen::compile(e).eval_value(&row, &dtype).unwrap();
        assert_eq!(interpreted, compiled, "expr #{op} on {row:?}");
    }
}

/// The colfile format round-trips arbitrary typed rows.
#[test]
fn colfile_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_4006);
    for _ in 0..32 {
        let data = arb_table(&mut rng, 0, 50);
        let rows = to_rows(&data);
        let schema = table_schema();
        let bytes = datasources::write_colfile(&schema, &rows, 16);
        let file = datasources::read_colfile(bytes).unwrap();
        let decoded: Vec<Row> = file.groups.iter().flat_map(|g| g.decode(None)).collect();
        assert_eq!(decoded, rows);
    }
}

/// LIKE simplification (prefix/suffix/infix) never changes results.
#[test]
fn like_simplification_preserves_semantics() {
    const PATTERNS: &[&str] = &["a%", "%b", "%ab%", "abc", "%", "a_c"];
    let mut rng = StdRng::seed_from_u64(0x5EED_4007);
    for _ in 0..32 {
        let data = arb_table(&mut rng, 0, 60);
        let pattern = PATTERNS[rng.random_range(0..PATTERNS.len())];
        // Optimized engine vs direct reference using the interpreter's
        // like_match (which the unsimplified path uses).
        let ctx = ctx_with(&data, spark_sql::SqlConf::default());
        let got = ctx
            .sql(&format!("SELECT count(*) FROM t WHERE s LIKE '{pattern}'"))
            .unwrap()
            .collect()
            .unwrap();
        let want = data
            .iter()
            .filter(|(_, _, s)| interpreter::like_match(s, pattern))
            .count();
        assert_eq!(got[0].get(0), &Value::Long(want as i64));
    }
}
