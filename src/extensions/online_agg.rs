//! G-OLA-style online aggregation (§7.1), prototyped on Catalyst.
//!
//! Zeng et al. "add a new operator to represent a relation that has been
//! broken up into sampled batches. During query planning a call to
//! transform is used to replace the original full query with several
//! queries, each of which operates on a successive sample of the data."
//!
//! [`online_aggregate`] does exactly that: it rewrites the query plan with
//! a Catalyst transform that swaps every leaf relation for a sampled
//! version, runs the rewritten query at increasing sampling fractions,
//! and scales partial answers into running estimates with a crude
//! accuracy measure, so a caller can stop early once the estimate is good
//! enough.

use catalyst::error::Result;
use catalyst::plan::LogicalPlan;
use catalyst::tree::{Transformed, TreeNode};
use catalyst::value::Value;
use catalyst::Row;
use spark_sql::{DataFrame, SQLContext};

/// One online-aggregation step: the estimate after seeing a fraction of
/// the data.
#[derive(Debug, Clone)]
pub struct OnlineEstimate {
    /// Sampling fraction this estimate was computed over.
    pub fraction: f64,
    /// Partial result rows, scaled to full-data estimates where the
    /// output column is a scale-dependent aggregate (counts/sums).
    pub rows: Vec<Row>,
    /// Relative change vs. the previous estimate (lower = more stable);
    /// `None` for the first batch.
    pub relative_change: Option<f64>,
}

/// Replace every leaf relation in `plan` with a Bernoulli sample — the
/// §7.1 "transform" that turns a full query into a sampled one.
pub fn sample_leaves(plan: LogicalPlan, fraction: f64, seed: u64) -> LogicalPlan {
    plan.transform_up(&mut |p| match p {
        leaf @ (LogicalPlan::Scan { .. }
        | LogicalPlan::External { .. }
        | LogicalPlan::LocalRelation { .. }) => Transformed::yes(leaf.sample(fraction, seed)),
        other => Transformed::no(other),
    })
    .data
}

/// Run `df`'s query over successively larger samples, scaling additive
/// aggregates (columns flagged in `scale_columns`) by 1/fraction.
///
/// Returns one [`OnlineEstimate`] per fraction; callers typically stop
/// consuming once `relative_change` is below their accuracy target.
pub fn online_aggregate(
    ctx: &SQLContext,
    df: &DataFrame,
    fractions: &[f64],
    scale_columns: &[usize],
) -> Result<Vec<OnlineEstimate>> {
    let mut estimates: Vec<OnlineEstimate> = Vec::new();
    for (i, &fraction) in fractions.iter().enumerate() {
        let sampled = sample_leaves(df.logical_plan().clone(), fraction, 42 + i as u64);
        let rows = ctx.dataframe(sampled)?.collect()?;
        let scaled: Vec<Row> = rows
            .into_iter()
            .map(|r| {
                Row::new(
                    r.values()
                        .iter()
                        .enumerate()
                        .map(|(c, v)| {
                            if scale_columns.contains(&c) && fraction > 0.0 {
                                match v.as_f64() {
                                    Some(f) => Value::Double(f / fraction),
                                    None => v.clone(),
                                }
                            } else {
                                v.clone()
                            }
                        })
                        .collect(),
                )
            })
            .collect();

        let relative_change = estimates
            .last()
            .map(|prev| estimate_delta(&prev.rows, &scaled));
        estimates.push(OnlineEstimate {
            fraction,
            rows: scaled,
            relative_change,
        });
    }
    Ok(estimates)
}

/// Mean relative difference between numeric cells of two result sets
/// (compared by sorted order; a crude accuracy signal).
fn estimate_delta(a: &[Row], b: &[Row]) -> f64 {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort();
    b.sort();
    let mut total = 0.0;
    let mut n = 0usize;
    for (ra, rb) in a.iter().zip(&b) {
        for (va, vb) in ra.values().iter().zip(rb.values()) {
            if let (Some(x), Some(y)) = (va.as_f64(), vb.as_f64()) {
                let denom = x.abs().max(y.abs()).max(1e-12);
                total += (x - y).abs() / denom;
                n += 1;
            }
        }
    }
    if n == 0 {
        1.0
    } else {
        total / n as f64
    }
}
