//! The §7.2 genomics range join, reproduced as a Catalyst extension.
//!
//! "Researchers in the ADAM project were able to build a special planning
//! rule into a version of Spark SQL" so that overlap joins
//!
//! ```sql
//! SELECT * FROM a JOIN b
//! WHERE a.start < a.end AND b.start < b.end
//!   AND a.start < b.start AND b.start < a.end
//! ```
//!
//! run with an interval tree instead of a nested-loop join. Here the rule
//! is [`IntervalJoinStrategy`], registered through
//! `SQLContext::add_strategy`; it recognizes the `lo < k AND k < hi`
//! pattern left above a cross join after predicate pushdown, and plans an
//! [`IntervalJoinExec`] that builds an interval tree over one side and
//! probes it with the other. "The changes required were approximately 100
//! lines of code" — this file's strategy + operator are about that, plus
//! the reusable interval tree.

use catalyst::error::Result;
use catalyst::expr::{BinaryOperator, ColumnRef, Expr};
use catalyst::interpreter::{self, bind_references};
use catalyst::optimizer::{conjunction, split_conjuncts};
use catalyst::physical::{ExtensionExec, PhysicalPlan, Planner, Strategy};
use catalyst::plan::{JoinType, LogicalPlan};
use catalyst::row::Row;
use std::sync::Arc;

// ---- interval tree ----

/// A static centered interval tree over half-open-ish intervals with
/// *strict* overlap semantics: a query point `k` matches interval
/// `(lo, hi)` when `lo < k && k < hi`.
pub struct IntervalTree<T> {
    root: Option<Box<Node<T>>>,
    len: usize,
}

struct Node<T> {
    center: f64,
    /// Intervals overlapping `center`, sorted ascending by lo.
    by_lo: Vec<(f64, f64, T)>,
    /// Same intervals sorted descending by hi.
    by_hi: Vec<(f64, f64, T)>,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

impl<T: Clone> IntervalTree<T> {
    /// Build from `(lo, hi, payload)` triples; empty or inverted
    /// intervals are kept (they simply never match).
    pub fn build(intervals: Vec<(f64, f64, T)>) -> Self {
        let len = intervals.len();
        IntervalTree {
            root: Self::build_node(intervals),
            len,
        }
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn build_node(intervals: Vec<(f64, f64, T)>) -> Option<Box<Node<T>>> {
        if intervals.is_empty() {
            return None;
        }
        // Median of endpoints as the center.
        let mut endpoints: Vec<f64> = intervals.iter().flat_map(|&(lo, hi, _)| [lo, hi]).collect();
        endpoints.sort_by(f64::total_cmp);
        let center = endpoints[endpoints.len() / 2];

        let mut here = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for iv in intervals {
            if iv.1 < center {
                left.push(iv);
            } else if iv.0 > center {
                right.push(iv);
            } else {
                here.push(iv);
            }
        }
        // Degenerate split guard: if everything landed on one side pile,
        // keep it here to guarantee progress.
        if here.is_empty() && (left.is_empty() || right.is_empty()) {
            here = if left.is_empty() {
                std::mem::take(&mut right)
            } else {
                std::mem::take(&mut left)
            };
        }
        let mut by_lo = here.clone();
        by_lo.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut by_hi = here;
        by_hi.sort_by(|a, b| b.1.total_cmp(&a.1));
        Some(Box::new(Node {
            center,
            by_lo,
            by_hi,
            left: Self::build_node(left),
            right: Self::build_node(right),
        }))
    }

    /// All payloads whose interval strictly contains `k`.
    pub fn query(&self, k: f64) -> Vec<&T> {
        let mut out = Vec::new();
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if k < n.center {
                // Only intervals starting before k can match.
                for (lo, hi, t) in &n.by_lo {
                    if *lo >= k {
                        break;
                    }
                    if k < *hi {
                        out.push(t);
                    }
                }
                node = n.left.as_deref();
            } else {
                // k >= center: only intervals ending after k can match.
                for (lo, hi, t) in &n.by_hi {
                    if *hi <= k {
                        break;
                    }
                    if *lo < k {
                        out.push(t);
                    }
                }
                node = n.right.as_deref();
            }
        }
        out
    }
}

// ---- the physical operator ----

/// Interval join: builds an [`IntervalTree`] over the interval side and
/// probes it with the point side's key.
pub struct IntervalJoinExec {
    /// Combined output (left ++ right).
    output: Vec<ColumnRef>,
    /// True when the *left* child provides the (lo, hi) interval.
    interval_is_left: bool,
    /// Bound (lo, hi) expressions over the interval side.
    lo: Expr,
    hi: Expr,
    /// Bound key expression over the point side.
    key: Expr,
    /// Residual conjuncts bound over the joined row.
    residual: Option<Expr>,
}

impl ExtensionExec for IntervalJoinExec {
    fn name(&self) -> String {
        format!(
            "IntervalJoin [{} side builds tree]",
            if self.interval_is_left {
                "left"
            } else {
                "right"
            }
        )
    }

    fn output(&self) -> Vec<ColumnRef> {
        self.output.clone()
    }

    fn execute(&self, mut children: Vec<Vec<Vec<Row>>>) -> Result<Vec<Vec<Row>>> {
        let right_parts = children.pop().expect("right child");
        let left_parts = children.pop().expect("left child");
        let (interval_parts, point_parts) = if self.interval_is_left {
            (left_parts, right_parts)
        } else {
            (right_parts, left_parts)
        };

        // Build the tree over all interval-side rows.
        let mut triples = Vec::new();
        for part in &interval_parts {
            for row in part {
                let lo = interpreter::eval(&self.lo, row)?;
                let hi = interpreter::eval(&self.hi, row)?;
                if let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) {
                    triples.push((lo, hi, row.clone()));
                }
            }
        }
        let tree = IntervalTree::build(triples);

        // Probe with the point side, preserving its partitioning.
        let mut out = Vec::with_capacity(point_parts.len());
        for part in point_parts {
            let mut rows = Vec::new();
            for prow in part {
                let key = interpreter::eval(&self.key, &prow)?;
                let Some(k) = key.as_f64() else { continue };
                for irow in tree.query(k) {
                    let joined = if self.interval_is_left {
                        irow.concat(&prow)
                    } else {
                        prow.concat(irow)
                    };
                    let keep = match &self.residual {
                        Some(r) => interpreter::eval_predicate(r, &joined)?,
                        None => true,
                    };
                    if keep {
                        rows.push(joined);
                    }
                }
            }
            out.push(rows);
        }
        Ok(out)
    }
}

// ---- the planning strategy ----

/// Recognizes `Filter(lo < k AND k < hi …)` over an inner/cross join and
/// plans an [`IntervalJoinExec`]. Register with
/// `SQLContext::add_strategy(Arc::new(IntervalJoinStrategy))`.
pub struct IntervalJoinStrategy;

/// Normalized strict less-than: returns (smaller, larger).
fn as_lt(e: &Expr) -> Option<(Expr, Expr)> {
    match e {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Lt,
            right,
        } => Some(((**left).clone(), (**right).clone())),
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Gt,
            right,
        } => Some(((**right).clone(), (**left).clone())),
        _ => None,
    }
}

fn side_of(e: &Expr, left: &[ColumnRef], right: &[ColumnRef]) -> Option<bool> {
    let refs = e.references();
    if refs.is_empty() {
        return None;
    }
    if refs.iter().all(|r| left.iter().any(|a| a.id == r.id)) {
        Some(true)
    } else if refs.iter().all(|r| right.iter().any(|a| a.id == r.id)) {
        Some(false)
    } else {
        None
    }
}

impl Strategy for IntervalJoinStrategy {
    fn name(&self) -> &str {
        "IntervalJoin"
    }

    fn apply(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<PhysicalPlan>> {
        // Match an inner/cross Join carrying range conjuncts — either in
        // its condition (where the optimizer's pushdown places them) or in
        // a Filter directly above it.
        let (join, extra_conjuncts) = match plan {
            LogicalPlan::Filter { input, predicate } => {
                ((**input).clone(), split_conjuncts(predicate))
            }
            join @ LogicalPlan::Join { .. } => (join.clone(), vec![]),
            _ => return Ok(None),
        };
        let LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
        } = &join
        else {
            return Ok(None);
        };
        if !matches!(join_type, JoinType::Inner | JoinType::Cross) {
            return Ok(None);
        }
        let left_out = left.output();
        let right_out = right.output();

        let mut conjuncts = extra_conjuncts;
        if let Some(c) = condition {
            conjuncts.extend(split_conjuncts(c));
        }

        // Find i != j with conjunct_i = (lo < k), conjunct_j = (k < hi),
        // where lo/hi live on one side and k on the other.
        for i in 0..conjuncts.len() {
            let Some((lo, k1)) = as_lt(&conjuncts[i]) else {
                continue;
            };
            for j in 0..conjuncts.len() {
                if i == j {
                    continue;
                }
                let Some((k2, hi)) = as_lt(&conjuncts[j]) else {
                    continue;
                };
                if k1 != k2 {
                    continue;
                }
                let (Some(lo_side), Some(k_side), Some(hi_side)) = (
                    side_of(&lo, &left_out, &right_out),
                    side_of(&k1, &left_out, &right_out),
                    side_of(&hi, &left_out, &right_out),
                ) else {
                    continue;
                };
                if lo_side != hi_side || lo_side == k_side {
                    continue;
                }
                let interval_is_left = lo_side;
                let (interval_out, point_out) = if interval_is_left {
                    (&left_out, &right_out)
                } else {
                    (&right_out, &left_out)
                };

                // Remaining conjuncts become a residual over the joined row.
                let mut joined_out = left_out.clone();
                joined_out.extend(right_out.clone());
                let residual: Vec<Expr> = conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| *idx != i && *idx != j)
                    .map(|(_, c)| c.clone())
                    .collect();
                let residual = match conjunction(residual) {
                    Some(r) => Some(bind_references(r, &joined_out)?),
                    None => None,
                };

                let exec = IntervalJoinExec {
                    output: joined_out,
                    interval_is_left,
                    lo: bind_references(lo, interval_out)?,
                    hi: bind_references(hi, interval_out)?,
                    key: bind_references(k1, point_out)?,
                    residual,
                };
                return Ok(Some(PhysicalPlan::Extension {
                    exec: Arc::new(exec),
                    children: vec![
                        Arc::new(planner.plan(left)?),
                        Arc::new(planner.plan(right)?),
                    ],
                }));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_finds_strictly_containing_intervals() {
        let tree = IntervalTree::build(vec![
            (0.0, 10.0, "a"),
            (5.0, 15.0, "b"),
            (20.0, 30.0, "c"),
            (7.0, 7.5, "d"),
        ]);
        let mut hits: Vec<&str> = tree.query(7.2).into_iter().copied().collect();
        hits.sort();
        assert_eq!(hits, vec!["a", "b", "d"]);
        assert!(
            tree.query(10.0).iter().all(|t| **t != "a"),
            "hi bound is strict"
        );
        assert!(tree.query(0.0).is_empty(), "lo bound is strict");
        assert_eq!(tree.query(25.0), vec![&"c"]);
        assert!(tree.query(100.0).is_empty());
    }

    #[test]
    fn tree_matches_brute_force_on_many_intervals() {
        let mut intervals = Vec::new();
        let mut state = 123456789u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64
        };
        for i in 0..500 {
            let lo = rnd();
            let hi = lo + rnd() / 10.0 + 1.0;
            intervals.push((lo, hi, i));
        }
        let tree = IntervalTree::build(intervals.clone());
        for probe in (0..1000).step_by(37) {
            let k = probe as f64 + 0.5;
            let mut got: Vec<i32> = tree.query(k).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<i32> = intervals
                .iter()
                .filter(|(lo, hi, _)| *lo < k && k < *hi)
                .map(|(_, _, i)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "probe {k}");
        }
    }

    #[test]
    fn empty_tree() {
        let tree: IntervalTree<u32> = IntervalTree::build(vec![]);
        assert!(tree.is_empty());
        assert!(tree.query(1.0).is_empty());
    }
}
