//! Research extensions built on Catalyst's extension points (§7 of the
//! paper): the ADAM-style genomics range join (§7.2) as a custom planning
//! strategy with an interval-tree physical operator, and helpers for
//! G-OLA-style online aggregation (§7.1).

pub mod interval_join;
pub mod online_agg;
