//! Umbrella crate for the Spark SQL reproduction workspace.
//!
//! Re-exports every component crate so the root `examples/` and `tests/`
//! can exercise the full stack through one dependency. Library users
//! should depend on the individual crates (most commonly `spark-sql`).

pub mod extensions;

pub use catalyst;
pub use columnar;
pub use datasources;
pub use engine;
pub use mllib;
pub use spark_sql;
pub use sql;
