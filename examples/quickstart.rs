//! Quickstart: the paper's opening examples end to end.
//!
//! Run with: `cargo run --example quickstart`

use spark_sql_repro::spark_sql::prelude::*;

record! {
    pub struct User {
        pub name: String => DataType::String,
        pub age: i32 => DataType::Int,
    }
}

fn main() -> catalyst::Result<()> {
    // A SQLContext over a simulated 4-core cluster.
    let ctx = SQLContext::new_local(4);

    // §3.5: create a DataFrame from native objects — schema inferred from
    // the Record implementation (the paper's case-class reflection).
    let users = ctx.create_dataframe_from(
        vec![
            User {
                name: "Alice".into(),
                age: 22,
            },
            User {
                name: "Bob".into(),
                age: 19,
            },
            User {
                name: "Carol".into(),
                age: 31,
            },
            User {
                name: "Dan".into(),
                age: 17,
            },
        ],
        2,
    )?;

    // §3.1: users.where(users("age") < 21) — lazy logical plan, eager
    // analysis, optimized execution.
    let young = users.where_(col("age").lt(lit(21)))?;
    println!("young.count() = {}", young.count()?);

    // §3.3: register as a temp table and mix in SQL.
    young.register_temp_table("young");
    let stats = ctx.sql("SELECT count(*), avg(age) FROM young")?;
    println!("{}", stats.show(10)?);

    // The whole pipeline is optimized across the SQL and DataFrame parts:
    println!("{}", stats.explain()?);

    // §3.1 again: every DataFrame is also an RDD of rows — drop into
    // procedural code freely.
    let names: Vec<String> = young
        .to_rdd()?
        .map(|row| row.get_str(0).to_uppercase())
        .collect();
    println!("young users, shouted: {names:?}");
    Ok(())
}
