//! §7.2: computational genomics range joins as a Catalyst extension.
//!
//! The paper's query — overlap of genomic regions expressed as a join
//! with inequality predicates — "would be executed by many systems using
//! an inefficient algorithm such as a nested loop join. In contrast, a
//! specialized system could compute the answer to this join using an
//! interval tree." This example registers the ADAM-style planning rule
//! and compares both executions.
//!
//! Run with: `cargo run --release --example genomics_range_join`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql_repro::extensions::interval_join::IntervalJoinStrategy;
use spark_sql_repro::spark_sql::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn region_rows(n: usize, seed: u64, span: i64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let start = rng.random_range(0..1_000_000i64);
            let end = start + rng.random_range(1..span);
            Row::new(vec![Value::Long(start), Value::Long(end)])
        })
        .collect()
}

fn main() -> catalyst::Result<()> {
    let ctx = SQLContext::new_local(4);
    let schema = |prefix: &str| {
        Arc::new(Schema::new(vec![
            StructField::new(format!("{prefix}start"), DataType::Long, false),
            StructField::new(format!("{prefix}end"), DataType::Long, false),
        ]))
    };
    ctx.register_rows("a", schema(""), region_rows(4000, 1, 500))?;
    // Table b uses distinct column names so the paper's query maps cleanly.
    let b_schema = Arc::new(Schema::new(vec![
        StructField::new("bstart", DataType::Long, false),
        StructField::new("bend", DataType::Long, false),
    ]));
    ctx.register_rows("b", b_schema, region_rows(4000, 2, 500))?;

    // The §7.2 query.
    // `end` is a SQL keyword (CASE … END), so it is quoted — the paper's
    // query shape is otherwise verbatim.
    let q = "SELECT * FROM a JOIN b \
             WHERE start < \"end\" AND bstart < bend \
               AND start < bstart AND bstart < \"end\"";

    // Without the extension: nested-loop execution.
    let t = Instant::now();
    let slow = ctx.sql(q)?.count()?;
    let nested_loop = t.elapsed();

    // Register the ~100-line planning rule and run the same query.
    ctx.add_strategy(Arc::new(IntervalJoinStrategy));
    let t = Instant::now();
    let fast = ctx.sql(q)?.count()?;
    let interval_tree = t.elapsed();

    assert_eq!(slow, fast, "same answer from both plans");
    println!("overlapping pairs: {fast}");
    println!("nested loop join : {nested_loop:?}");
    println!("interval tree    : {interval_tree:?}");
    println!(
        "speedup          : {:.1}x",
        nested_loop.as_secs_f64() / interval_tree.as_secs_f64()
    );
    println!(
        "\nphysical plan with the extension:\n{}",
        ctx.sql(q)?.explain()?
    );
    Ok(())
}
