//! The AMPLab big data benchmark workload (§6.1) at example scale:
//! rankings & uservisits tables, queried with both SQL and the DataFrame
//! DSL, showing they build the same optimized plans.
//!
//! Run with: `cargo run --example web_analytics`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql_repro::spark_sql::prelude::*;
use std::sync::Arc;

fn main() -> catalyst::Result<()> {
    let ctx = SQLContext::new_local(4);
    let mut rng = StdRng::seed_from_u64(7);

    // rankings(pageURL, pageRank, avgDuration)
    let rankings_schema = Arc::new(Schema::new(vec![
        StructField::new("pageURL", DataType::String, false),
        StructField::new("pageRank", DataType::Int, false),
        StructField::new("avgDuration", DataType::Int, false),
    ]));
    let rankings: Vec<Row> = (0..20_000)
        .map(|i| {
            Row::new(vec![
                Value::str(format!("url{i}")),
                Value::Int(rng.random_range(0..10_000)),
                Value::Int(rng.random_range(1..100)),
            ])
        })
        .collect();
    ctx.register_rows("rankings", rankings_schema, rankings)?;

    // uservisits(sourceIP, destURL, visitDate, adRevenue)
    let visits_schema = Arc::new(Schema::new(vec![
        StructField::new("sourceIP", DataType::String, false),
        StructField::new("destURL", DataType::String, false),
        StructField::new("visitDate", DataType::Date, false),
        StructField::new("adRevenue", DataType::Double, false),
    ]));
    let visits: Vec<Row> = (0..50_000)
        .map(|_| {
            Row::new(vec![
                Value::str(format!(
                    "{}.{}.{}.{}",
                    rng.random_range(1..255),
                    rng.random_range(0..255),
                    rng.random_range(0..255),
                    rng.random_range(0..255)
                )),
                Value::str(format!("url{}", rng.random_range(0..20_000))),
                Value::Date(rng.random_range(3650..16000)),
                Value::Double(rng.random_range(0.0..100.0)),
            ])
        })
        .collect();
    ctx.register_rows("uservisits", visits_schema, visits)?;

    // Query 1 (scan + filter): SQL vs DataFrame DSL.
    let q1_sql = ctx.sql("SELECT pageURL, pageRank FROM rankings WHERE pageRank > 9000")?;
    let q1_df = ctx
        .table("rankings")?
        .where_(col("pageRank").gt(lit(9000)))?
        .select(vec![col("pageURL"), col("pageRank")])?;
    println!(
        "Q1: sql = {} rows, dsl = {} rows",
        q1_sql.count()?,
        q1_df.count()?
    );

    // Query 2 (aggregation on a computed key).
    let q2 = ctx.sql(
        "SELECT substr(sourceIP, 1, 7) AS prefix, sum(adRevenue) AS rev \
         FROM uservisits GROUP BY substr(sourceIP, 1, 7) \
         ORDER BY rev DESC LIMIT 5",
    )?;
    println!("Q2 (top ad-revenue IP prefixes):\n{}", q2.show(5)?);

    // Query 3 (join + aggregation + top-1), the paper's hardest query.
    let q3 = ctx.sql(
        "SELECT sourceIP, totalRevenue, avgPageRank FROM \
           (SELECT sourceIP, avg(pageRank) AS avgPageRank, sum(adRevenue) AS totalRevenue \
            FROM rankings, uservisits \
            WHERE pageURL = destURL \
              AND visitDate BETWEEN DATE '1980-01-01' AND DATE '2010-01-01' \
            GROUP BY sourceIP) t \
         ORDER BY totalRevenue DESC LIMIT 1",
    )?;
    println!("Q3 (best visitor):\n{}", q3.show(1)?);
    println!("Q3 physical plan (note the join choice and TakeOrdered):");
    println!("{}", q3.explain()?);
    Ok(())
}
