//! §5.1: JSON schema inference on the paper's Figure 5 tweets, then the
//! path query from the text.
//!
//! Run with: `cargo run --example json_tweets`

use spark_sql_repro::spark_sql::prelude::*;

fn main() -> catalyst::Result<()> {
    let ctx = SQLContext::new_local(2);

    // The exact records of Figure 5.
    let tweets = [
        r##"{"text": "This is a tweet about #Spark", "tags": ["#Spark"], "loc": {"lat": 45.1, "long": 90}}"##,
        r#"{"text": "This is another tweet", "tags": [], "loc": {"lat": 39, "long": 88.5}}"#,
        r##"{"text": "A #tweet without #location", "tags": ["#tweet", "#location"]}"##,
    ];

    let df = ctx.read_json_lines("tweets", tweets)?;

    // The inferred schema should match Figure 6:
    //   text STRING NOT NULL
    //   tags ARRAY<STRING NOT NULL> NOT NULL
    //   loc STRUCT<lat FLOAT NOT NULL, long FLOAT NOT NULL>
    println!("inferred schema:\n{}\n", df.schema());

    df.register_temp_table("tweets");

    // The query from the paper:
    //   SELECT loc.lat, loc.long FROM tweets
    //   WHERE text LIKE '%Spark%' AND tags IS NOT NULL
    let result = ctx.sql(
        "SELECT loc.lat, loc.long FROM tweets \
         WHERE text LIKE '%Spark%' AND tags IS NOT NULL",
    )?;
    println!("{}", result.show(10)?);

    // LIKE '%Spark%' was optimized to a contains() call — see the plan:
    println!("{}", result.explain()?);
    Ok(())
}
