//! §5.2 / Figure 7: an MLlib pipeline over DataFrames — tokenize text,
//! featurize with HashingTF into the vector UDT, train logistic
//! regression, then expose the model to SQL as a UDF (§3.7).
//!
//! Run with: `cargo run --example ml_pipeline`

use mllib::{accuracy, HashingTF, LogisticRegression, Pipeline, Tokenizer, Transformer, VectorUdt};
use spark_sql_repro::spark_sql::prelude::*;
use std::sync::Arc;

fn main() -> catalyst::Result<()> {
    let ctx = SQLContext::new_local(4);

    // Register the vector UDT like MLlib does (§4.4.2 / §5.2).
    ctx.register_udt(
        "vector",
        catalyst::udt::UserDefinedType::data_type(&VectorUdt),
    );

    // Start with a DataFrame of (text, label) records — Figure 7's input.
    let schema = Arc::new(Schema::new(vec![
        StructField::new("text", DataType::String, false),
        StructField::new("label", DataType::Double, false),
    ]));
    let mut rows = Vec::new();
    for i in 0..200 {
        let (text, label) = if i % 2 == 0 {
            (
                format!("spark catalyst optimizer dataframe shuffle {i}"),
                1.0,
            )
        } else {
            (format!("garden tomato water sunshine compost {i}"), 0.0)
        };
        rows.push(Row::new(vec![Value::str(text), Value::Double(label)]));
    }
    let df = ctx.create_dataframe(schema, rows)?;

    // The Figure 7 pipeline: tokenizer -> tf -> lr.
    let pipeline = Pipeline::new()
        .add_transformer(Tokenizer::new("text", "words"))
        .add_transformer(HashingTF::new("words", "features", 512))
        .add_estimator(LogisticRegression::new("features", "label").with_iterations(40));
    println!("pipeline stages: {:?}", pipeline.stage_names());

    let model = pipeline.fit(&df)?;
    let scored = model.transform(&df)?;
    println!(
        "output schema (columns appended per stage): {:?}",
        scored.columns()
    );
    println!(
        "training accuracy: {:.3}",
        accuracy(&scored, "prediction", "label")?
    );

    // §3.7: "given a model object … register its prediction function as a
    // UDF" and use it from SQL.
    let featurized = Pipeline::new()
        .add_transformer(Tokenizer::new("text", "words"))
        .add_transformer(HashingTF::new("words", "features", 512))
        .fit(&df)?
        .transform(&df)?;
    featurized.register_temp_table("docs");

    use mllib::Estimator;
    let lr_model = LogisticRegression::new("features", "label")
        .with_iterations(40)
        .fit(&featurized)?;
    ctx.register_udf("predict", DataType::Double, move |args| {
        let v = VectorUdt::from_value(&args[0])?;
        Ok(Value::Double(lr_model.predict(&v)))
    });
    let sql_scores = ctx.sql(
        "SELECT label, predict(features) AS prediction, count(*) AS n \
         FROM docs GROUP BY label, predict(features) ORDER BY label",
    )?;
    println!("{}", sql_scores.show(10)?);
    Ok(())
}
