//! An interactive SQL console (the paper's Figure 1 shows SQL reaching
//! Spark SQL through JDBC/ODBC or a console — this is the console).
//!
//! Comes preloaded with sample tables; supports every statement the
//! dialect knows: queries, `EXPLAIN`, `SHOW TABLES`, `DESCRIBE t`,
//! `CACHE TABLE t`, and `CREATE TEMPORARY TABLE … USING … OPTIONS(…)`.
//!
//! Run with: `cargo run --release --example sql_shell`
//! (pipe a script: `echo "SHOW TABLES" | cargo run --example sql_shell`)

use spark_sql_repro::spark_sql::prelude::*;
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let ctx = SQLContext::new_local(4);
    preload(&ctx);

    println!("spark-sql-repro console — try: SHOW TABLES; DESCRIBE employees;");
    println!("SELECT dept, avg(salary) FROM employees GROUP BY dept ORDER BY dept;");
    println!("EXPLAIN SELECT * FROM employees WHERE salary > 100; (quit to exit)\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("sql> ");
        } else {
            print!("  -> ");
        }
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() && matches!(trimmed, "quit" | "exit" | "\\q") {
            break;
        }
        buffer.push_str(&line);
        // Execute on a terminating semicolon (or a whole non-empty line
        // when reading a piped script without semicolons).
        if !trimmed.ends_with(';') && trimmed.contains(' ') && buffer.lines().count() < 2 {
            // allow single-line statements without ';'
        } else if !trimmed.ends_with(';') && !trimmed.is_empty() {
            continue;
        }
        let statement = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if statement.is_empty() {
            continue;
        }
        match ctx.sql(&statement) {
            Ok(df) => {
                if df.schema().is_empty() {
                    println!("OK");
                } else {
                    match df.show(50) {
                        Ok(table) => print!("{table}"),
                        Err(e) => println!("execution error: {e}"),
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

fn preload(ctx: &SQLContext) {
    let schema = Arc::new(Schema::new(vec![
        StructField::new("name", DataType::String, false),
        StructField::new("dept", DataType::String, false),
        StructField::new("salary", DataType::Double, false),
    ]));
    let rows: Vec<Row> = [
        ("alice", "eng", 120.0),
        ("bob", "eng", 95.0),
        ("carol", "sales", 80.0),
        ("dan", "sales", 85.0),
        ("erin", "hr", 70.0),
    ]
    .iter()
    .map(|(n, d, s)| Row::new(vec![Value::str(*n), Value::str(*d), Value::Double(*s)]))
    .collect();
    ctx.register_rows("employees", schema, rows).unwrap();

    let tweets = [
        r##"{"text": "This is a tweet about #Spark", "tags": ["#Spark"], "loc": {"lat": 45.1, "long": 90}}"##,
        r#"{"text": "This is another tweet", "tags": [], "loc": {"lat": 39, "long": 88.5}}"#,
        r##"{"text": "A #tweet without #location", "tags": ["#tweet", "#location"]}"##,
    ];
    ctx.read_json_lines("tweets", tweets)
        .unwrap()
        .register_temp_table("tweets");
}
