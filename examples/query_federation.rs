//! §5.3: query federation to external databases — the paper's exact
//! scenario: a "MySQL" users table joined with a JSON log file, with the
//! filter predicate pushed down into the remote database to reduce the
//! data transferred.
//!
//! Run with: `cargo run --example query_federation`

use datasources::{register_database, RemoteDb};
use spark_sql_repro::spark_sql::prelude::*;
use std::sync::Arc;

fn main() -> catalyst::Result<()> {
    let ctx = SQLContext::new_local(4);

    // --- the "remote MySQL" server, reachable over a byte-metered wire.
    let db = RemoteDb::new();
    let users_schema = Arc::new(Schema::new(vec![
        StructField::new("id", DataType::Long, false),
        StructField::new("name", DataType::String, false),
        StructField::new("registrationDate", DataType::Date, false),
        StructField::new("bio", DataType::String, false), // wide column we never read
    ]));
    let users: Vec<Row> = (0..5000)
        .map(|i| {
            Row::new(vec![
                Value::Long(i),
                Value::str(format!("user{i}")),
                Value::Date(catalyst::value::parse_date("2014-01-01").unwrap() + (i % 720) as i32),
                Value::str("x".repeat(200)),
            ])
        })
        .collect();
    db.create_table("users", users_schema, users);
    register_database("jdbc:mysql://userDB/users", db.clone());

    // --- the JSON logs file.
    let dir = std::env::temp_dir().join(format!("federation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let logs_path = dir.join("logs.json");
    let mut logs = String::new();
    for i in 0..20_000 {
        logs.push_str(&format!(
            "{{\"userId\": {}, \"message\": \"event-{i}\"}}\n",
            i % 5000
        ));
    }
    std::fs::write(&logs_path, logs).unwrap();

    // The paper's DDL, verbatim in shape:
    ctx.sql(
        "CREATE TEMPORARY TABLE users USING jdbc \
             OPTIONS(driver 'mysql', url 'jdbc:mysql://userDB/users', table 'users')",
    )?;
    ctx.sql(&format!(
        "CREATE TEMPORARY TABLE logs USING json OPTIONS (path '{}')",
        logs_path.display()
    ))?;

    // And the paper's federated query:
    let q = "SELECT users.id, users.name, logs.message \
             FROM users JOIN logs ON users.id = logs.userId \
             WHERE users.registrationDate > '2015-06-01'";
    let df = ctx.sql(q)?;
    let n = df.count()?;
    println!("federated join produced {n} rows");
    println!(
        "bytes over the remote wire WITH pushdown:    {:>12}",
        db.bytes_transferred()
    );
    println!(
        "remote query actually executed (cf. §5.3):\n  {}",
        db.query_log().last().unwrap()
    );

    // Ablation: disable pushdown and run the same query.
    db.reset_meters();
    ctx.set_conf(|c| {
        c.pushdown_enabled = false;
        c.column_pruning_enabled = false;
    });
    let n2 = ctx.sql(q)?.count()?;
    assert_eq!(n, n2, "same answer either way");
    println!(
        "bytes over the remote wire WITHOUT pushdown: {:>12}",
        db.bytes_transferred()
    );
    println!(
        "remote query without pushdown:\n  {}",
        db.query_log().last().unwrap()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
