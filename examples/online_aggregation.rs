//! §7.1: generalized online aggregation (G-OLA) prototyped on Catalyst —
//! the full query is rewritten (via a plan transform) into a sequence of
//! queries over successive samples, giving the user running estimates
//! with an accuracy signal they can stop on.
//!
//! Run with: `cargo run --release --example online_aggregation`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spark_sql_repro::extensions::online_agg::online_aggregate;
use spark_sql_repro::spark_sql::prelude::*;
use std::sync::Arc;

fn main() -> catalyst::Result<()> {
    let ctx = SQLContext::new_local(4);
    let mut rng = StdRng::seed_from_u64(11);

    let schema = Arc::new(Schema::new(vec![
        StructField::new("category", DataType::String, false),
        StructField::new("amount", DataType::Double, false),
    ]));
    let rows: Vec<Row> = (0..400_000)
        .map(|_| {
            let cat = ["web", "mobile", "store"][rng.random_range(0..3usize)];
            Row::new(vec![
                Value::str(cat),
                Value::Double(rng.random_range(0.0..100.0)),
            ])
        })
        .collect();
    ctx.register_rows("sales", schema, rows)?;

    let df = ctx.sql("SELECT category, sum(amount) AS total FROM sales GROUP BY category")?;
    let exact = df.collect()?;

    // Online estimates over growing samples; column 1 (the sum) scales by
    // 1/fraction.
    let estimates = online_aggregate(&ctx, &df, &[0.01, 0.05, 0.1, 0.2], &[1])?;
    println!("fraction | estimate of sum(amount) per category | rel. change");
    for e in &estimates {
        let mut rows = e.rows.clone();
        rows.sort();
        let rendered: Vec<String> = rows
            .iter()
            .map(|r| format!("{}≈{:.0}", r.get_str(0), r.get_double(1)))
            .collect();
        println!(
            "{:>7.0}% | {} | {}",
            e.fraction * 100.0,
            rendered.join("  "),
            e.relative_change
                .map(|c| format!("{:.2}%", c * 100.0))
                .unwrap_or_else(|| "-".into())
        );
    }

    let mut exact_sorted = exact.clone();
    exact_sorted.sort();
    println!(
        "  exact  | {}",
        exact_sorted
            .iter()
            .map(|r| format!("{}={:.0}", r.get_str(0), r.get_double(1)))
            .collect::<Vec<_>>()
            .join("  ")
    );

    // The final estimate should be within a few percent of the truth.
    let last = estimates.last().unwrap();
    let mut last_rows = last.rows.clone();
    last_rows.sort();
    for (est, exact) in last_rows.iter().zip(&exact_sorted) {
        let rel = (est.get_double(1) - exact.get_double(1)).abs() / exact.get_double(1);
        println!(
            "{}: final relative error {:.2}%",
            est.get_str(0),
            rel * 100.0
        );
    }
    Ok(())
}
